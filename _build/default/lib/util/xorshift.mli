(** Deterministic pseudo-random number generation.

    All randomized components of the library (dataset generators, workload
    samplers, the TreeSketches builder) draw from an explicit generator state
    so that every experiment is reproducible from a seed.  The implementation
    is splitmix64 feeding xoshiro256**, which is fast and has no observable
    bias for the sample sizes used here. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator deterministically from [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator duplicating [t]'s current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams from
    the parent and the child are statistically independent. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] counts failures before the first success of a Bernoulli
    trial with success probability [p]; 0-based, so the mean is
    [(1-p)/p]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] samples a rank in [\[1, n\]] from a Zipf distribution with
    exponent [s] (by inverse-transform over the precomputed CDF would be
    costly per-call; this uses rejection-inversion which needs no tables). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** [pick_weighted t choices] samples proportionally to the (non-negative,
    not all zero) weights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] is [k] distinct elements of [arr]
    (all of them, shuffled, when [k >= Array.length arr]). *)
