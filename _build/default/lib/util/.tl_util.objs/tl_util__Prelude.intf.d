lib/util/prelude.mli:
