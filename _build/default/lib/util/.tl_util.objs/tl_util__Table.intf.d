lib/util/table.mli:
