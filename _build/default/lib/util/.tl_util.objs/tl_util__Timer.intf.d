lib/util/timer.mli:
