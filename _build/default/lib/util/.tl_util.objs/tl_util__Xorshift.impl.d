lib/util/xorshift.ml: Array Float Hashtbl Int64
