lib/util/xorshift.mli:
