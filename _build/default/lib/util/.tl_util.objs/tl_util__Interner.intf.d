lib/util/interner.mli:
