lib/util/stats.ml: Array Float Printf
