lib/util/stats.mli:
