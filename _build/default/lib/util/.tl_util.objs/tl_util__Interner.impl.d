lib/util/interner.ml: Array Hashtbl Printf
