lib/util/prelude.ml: Float List Printf
