(** Plain-text table rendering for experiment reports.

    The benchmark harness prints every reproduced table and figure as an
    aligned text table; this module owns the layout so reports look uniform
    across experiments. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out [rows] under [header] with a separator
    line, padding every column to its widest cell.  [aligns] defaults to
    [Left] for the first column and [Right] for the rest, the common shape
    for "name, number, number, ..." experiment tables.  Rows shorter than the
    header are padded with empty cells. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point rendering (default 2 decimals) used for error percentages
    and timings. *)

val int_cell : int -> string
