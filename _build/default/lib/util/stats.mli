(** Descriptive statistics over float samples.

    Used by the experiment harness (average errors, percentiles, error CDFs)
    and by the TreeSketches builder (cluster distortion). *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty sample. *)

val variance : float array -> float
(** Population variance; 0 for samples of size < 2. *)

val stddev : float array -> float

val minimum : float array -> float
(** Raises [Invalid_argument] on an empty sample. *)

val maximum : float array -> float
(** Raises [Invalid_argument] on an empty sample. *)

val median : float array -> float
(** Raises [Invalid_argument] on an empty sample. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], nearest-rank method on a
    sorted copy.  Raises [Invalid_argument] on an empty sample. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive samples; 0 for an empty sample. *)

val cdf_points : float array -> (float * float) list
(** [cdf_points xs] is the empirical CDF of [xs] as a sorted list of
    [(value, cumulative_fraction)] pairs, one per distinct value. *)

val cdf_at : float array -> float -> float
(** [cdf_at xs v] is the fraction of samples [<= v]. *)

val histogram : buckets:float array -> float array -> int array
(** [histogram ~buckets xs] counts samples per bucket; [buckets] holds the
    right edges, the last bucket also absorbs anything beyond it.  The result
    has the same length as [buckets]. *)
