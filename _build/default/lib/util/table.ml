type align = Left | Right

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render ?aligns ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> a
    | Some _ -> invalid_arg "Table.render: aligns length mismatch"
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let widths = Array.of_list (List.map String.length header) in
  let account row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  List.iter account rows;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  Array.iter (fun w -> Buffer.add_string buf (String.make w '-'); Buffer.add_string buf "  ") widths;
  (* Trim the trailing separator spacing for a clean right edge. *)
  let sep_len = Buffer.length buf in
  Buffer.truncate buf (sep_len - 2);
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?aligns ~header rows = print_string (render ?aligns ~header rows)

let float_cell ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let int_cell = string_of_int
