let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let require_non_empty name xs =
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty sample" name)

let minimum xs =
  require_non_empty "minimum" xs;
  Array.fold_left min xs.(0) xs

let maximum xs =
  require_non_empty "maximum" xs;
  Array.fold_left max xs.(0) xs

let sorted xs =
  let copy = Array.copy xs in
  Array.sort compare copy;
  copy

let percentile xs p =
  require_non_empty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0, 100]";
  let s = sorted xs in
  let n = Array.length s in
  if p = 0.0 then s.(0)
  else begin
    (* Nearest-rank: smallest value such that at least p% of samples are <= it. *)
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    s.(max 0 (min (n - 1) (rank - 1)))
  end

let median xs = percentile xs 50.0

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc =
      Array.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample";
          acc +. log x)
        0.0 xs
    in
    exp (acc /. float_of_int n)
  end

let cdf_points xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let s = sorted xs in
    let total = float_of_int n in
    let rec collect i acc =
      if i < 0 then acc
      else begin
        (* Keep only the last occurrence of each distinct value: that index
           carries the full cumulative fraction for the value. *)
        let keep = i = n - 1 || s.(i) <> s.(i + 1) in
        let acc = if keep then (s.(i), float_of_int (i + 1) /. total) :: acc else acc in
        collect (i - 1) acc
      end
    in
    collect (n - 1) []
  end

let cdf_at xs v =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let count = Array.fold_left (fun acc x -> if x <= v then acc + 1 else acc) 0 xs in
    float_of_int count /. float_of_int n
  end

let histogram ~buckets xs =
  let k = Array.length buckets in
  let counts = Array.make k 0 in
  let place x =
    let rec find i = if i >= k - 1 then k - 1 else if x <= buckets.(i) then i else find (i + 1) in
    find 0
  in
  Array.iter (fun x -> let i = place x in counts.(i) <- counts.(i) + 1) xs;
  counts
