type t = { ids : (string, int) Hashtbl.t; mutable rev : string array; mutable next : int }

let create () = { ids = Hashtbl.create 64; rev = Array.make 64 ""; next = 0 }

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
    let id = t.next in
    if id >= Array.length t.rev then begin
      let bigger = Array.make (2 * Array.length t.rev) "" in
      Array.blit t.rev 0 bigger 0 id;
      t.rev <- bigger
    end;
    t.rev.(id) <- s;
    Hashtbl.replace t.ids s id;
    t.next <- id + 1;
    id

let find t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= t.next then invalid_arg (Printf.sprintf "Interner.name: unknown id %d" id);
  t.rev.(id)

let size t = t.next

let names t = Array.sub t.rev 0 t.next

let copy t = { ids = Hashtbl.copy t.ids; rev = Array.copy t.rev; next = t.next }
