module Data_tree = Tl_tree.Data_tree
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator

type t = { vtree : Value_tree.t; structural : Summary.t; values : Value_summary.t }

let of_parts vtree structural values = { vtree; structural; values }

let create ?(k = 4) ?(top = 32) vtree =
  { vtree; structural = Summary.build ~k (Value_tree.tree vtree); values = Value_summary.build ~top vtree }

let vtree t = t.vtree

let structural t = t.structural

let values t = t.values

let estimate ?(scheme = Tl_core.Treelattice.default_scheme) t query =
  let query = Value_query.canonicalize query in
  let structural_estimate = Estimator.estimate t.structural scheme (Value_query.strip query) in
  if structural_estimate = 0.0 then 0.0
  else
    List.fold_left
      (fun acc (label, value) -> acc *. Value_summary.value_probability t.values label value)
      structural_estimate (Value_query.predicates query)

let exact t query = Value_match.selectivity t.vtree query

let parse t query =
  let tree = Value_tree.tree t.vtree in
  Value_query.parse ~intern:(fun tag -> Some (Data_tree.intern_label tree tag)) query

let estimate_string ?scheme t query = Result.map (estimate ?scheme t) (parse t query)

let exact_string t query = Result.map (exact t) (parse t query)
