module Data_tree = Tl_tree.Data_tree

(* Indexed value query: preorder arrays plus per-node sibling groups, where
   a group key is (label, value constraint) — two same-label children with
   different constraints are distinct assignment targets and must land on
   distinct data children, hence the permanent runs per (label) with
   per-member value checks folded into the match counts. *)
type qnode = { qlabel : int; qvalue : string option; groups : (int * int array) array }

let prepare query =
  let query = Value_query.canonicalize query in
  let nodes = ref [] in
  let next = ref 0 in
  let rec walk (q : Value_query.t) =
    let id = !next in
    incr next;
    let kid_ids = List.map walk q.Value_query.children in
    nodes := (id, q, kid_ids) :: !nodes;
    id
  in
  ignore (walk query);
  let n = !next in
  let qnodes = Array.make n { qlabel = 0; qvalue = None; groups = [||] } in
  List.iter
    (fun (id, (q : Value_query.t), kid_ids) ->
      let by_label = Hashtbl.create 4 in
      List.iter2
        (fun (c : Value_query.t) cid ->
          let l = c.Value_query.label in
          Hashtbl.replace by_label l (cid :: Option.value ~default:[] (Hashtbl.find_opt by_label l)))
        q.Value_query.children kid_ids;
      let groups =
        Hashtbl.fold (fun l members acc -> (l, Array.of_list (List.rev members)) :: acc) by_label []
      in
      qnodes.(id) <- { qlabel = q.Value_query.label; qvalue = q.Value_query.value; groups = Array.of_list groups })
    !nodes;
  qnodes

let value_ok vtree v = function
  | None -> true
  | Some expected -> (
    match Value_tree.value vtree v with Some actual -> String.equal actual expected | None -> false)

let run vtree query =
  let tree = Value_tree.tree vtree in
  let qnodes = prepare query in
  let qn = Array.length qnodes in
  let memo : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec node_count v q =
    let key = (v * qn) + q in
    match Hashtbl.find_opt memo key with
    | Some c -> c
    | None ->
      let { qvalue; groups; _ } = qnodes.(q) in
      let count =
        if not (value_ok vtree v qvalue) then 0
        else begin
          let total = ref 1 in
          let gi = ref 0 in
          while !total <> 0 && !gi < Array.length groups do
            let group_label, group = groups.(!gi) in
            total := !total * group_count group_label group v;
            incr gi
          done;
          !total
        end
      in
      Hashtbl.replace memo key count;
      count
  and group_count group_label group v =
    let m = Array.length group in
    if m = 1 then
      Data_tree.fold_children_with_label tree v group_label
        (fun acc w -> acc + node_count w group.(0))
        0
    else begin
      let full = (1 lsl m) - 1 in
      let ways = Array.make (full + 1) 0 in
      ways.(0) <- 1;
      Data_tree.fold_children_with_label tree v group_label
        (fun () w ->
          for mask = full downto 1 do
            let acc = ref ways.(mask) in
            for i = 0 to m - 1 do
              if mask land (1 lsl i) <> 0 then begin
                let sub = node_count w group.(i) in
                if sub <> 0 then acc := !acc + (ways.(mask lxor (1 lsl i)) * sub)
              end
            done;
            ways.(mask) <- !acc
          done)
        ();
      ways.(full)
    end
  in
  (qnodes, node_count)

let selectivity vtree query =
  let query = Value_query.canonicalize query in
  let qnodes, node_count = run vtree query in
  let tree = Value_tree.tree vtree in
  Array.fold_left
    (fun acc v -> acc + node_count v 0)
    0
    (Data_tree.nodes_with_label tree qnodes.(0).qlabel)

let selectivity_rooted vtree query v =
  let query = Value_query.canonicalize query in
  let qnodes, node_count = run vtree query in
  if Data_tree.label (Value_tree.tree vtree) v = qnodes.(0).qlabel then node_count v 0 else 0
