module Xml_dom = Tl_xml.Xml_dom
module Data_tree = Tl_tree.Data_tree

type t = { tree : Data_tree.t; values : string option array }

(* The value array must align with Data_tree.of_element's preorder ids, so
   the traversal discipline here mirrors it exactly (stack with children
   pushed in reverse). *)
let of_element root_el =
  let tree = Data_tree.of_element root_el in
  let values = Array.make (Data_tree.size tree) None in
  let next_id = ref 0 in
  let stack = ref [ root_el ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | el :: rest ->
      stack := rest;
      let id = !next_id in
      incr next_id;
      let element_children =
        List.filter_map
          (fun child ->
            match child with
            | Xml_dom.Element e -> Some e
            | Xml_dom.Text _ | Xml_dom.Comment _ | Xml_dom.Pi _ -> None)
          el.Xml_dom.children
      in
      if element_children = [] then begin
        let text =
          List.filter_map
            (fun child -> match child with Xml_dom.Text t -> Some t | _ -> None)
            el.Xml_dom.children
          |> String.concat "" |> String.trim
        in
        if text <> "" then values.(id) <- Some text
      end;
      List.iter (fun e -> stack := e :: !stack) (List.rev element_children)
  done;
  { tree; values }

let of_xml (doc : Xml_dom.t) = of_element doc.root

let tree t = t.tree

let value t v = t.values.(v)

let valued_nodes t =
  Array.fold_left (fun acc v -> match v with Some _ -> acc + 1 | None -> acc) 0 t.values
