type t = { label : int; value : string option; children : t list }

let leaf ?value label = { label; value; children = [] }

let node ?value label children = { label; value; children }

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 t.children

let hex s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let rec canon t =
  let kids = List.map canon t.children in
  let kids = List.sort (fun (_, e1) (_, e2) -> String.compare e1 e2) kids in
  let value_part = match t.value with None -> "" | Some v -> "=" ^ hex v in
  let enc =
    match kids with
    | [] -> string_of_int t.label ^ value_part
    | _ ->
      string_of_int t.label ^ value_part ^ "(" ^ String.concat "," (List.map snd kids) ^ ")"
  in
  ({ t with children = List.map fst kids }, enc)

let canonicalize t = fst (canon t)

let encode t = snd (canon t)

let equal a b = String.equal (encode a) (encode b)

let rec strip t = Tl_twig.Twig.node t.label (List.map strip t.children)

let predicates t =
  let t = canonicalize t in
  let acc = ref [] in
  let rec walk t =
    (match t.value with Some v -> acc := (t.label, v) :: !acc | None -> ());
    List.iter walk t.children
  in
  walk t;
  List.rev !acc

let rec of_twig (tw : Tl_twig.Twig.t) =
  { label = tw.Tl_twig.Twig.label; value = None; children = List.map of_twig tw.Tl_twig.Twig.children }

let pp ~names t =
  let buf = Buffer.create 64 in
  let quote v =
    let bare = String.for_all (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | ':' | '-' -> true | _ -> false) v in
    if bare && v <> "" then v
    else begin
      let escaped = Buffer.create (String.length v + 2) in
      Buffer.add_char escaped '"';
      String.iter
        (fun c ->
          if c = '"' || c = '\\' then Buffer.add_char escaped '\\';
          Buffer.add_char escaped c)
        v;
      Buffer.add_char escaped '"';
      Buffer.contents escaped
    end
  in
  let rec go t =
    Buffer.add_string buf (names t.label);
    (match t.value with
    | Some v ->
      Buffer.add_char buf '=';
      Buffer.add_string buf (quote v)
    | None -> ());
    match t.children with
    | [] -> ()
    | kids ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          go c)
        kids;
      Buffer.add_char buf ')'
  in
  go t;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------------- *)

let parse ~intern input =
  let n = String.length input in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "offset %d: %s" !pos m)) fmt in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while !pos < n && (input.[!pos] = ' ' || input.[!pos] = '\t' || input.[!pos] = '\n') do
      incr pos
    done
  in
  let is_tag_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
    | _ -> false
  in
  let scan_token () =
    let start = !pos in
    while !pos < n && is_tag_char input.[!pos] do
      incr pos
    done;
    String.sub input start (!pos - start)
  in
  let scan_quoted () =
    (* cursor on the opening quote *)
    incr pos;
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string"
      else begin
        match input.[!pos] with
        | '"' ->
          incr pos;
          Ok (Buffer.contents buf)
        | '\\' when !pos + 1 < n ->
          Buffer.add_char buf input.[!pos + 1];
          pos := !pos + 2;
          loop ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          loop ()
      end
    in
    loop ()
  in
  let ( let* ) = Result.bind in
  let rec scan_node () =
    skip_ws ();
    let tag = scan_token () in
    if tag = "" then error "expected a tag name"
    else begin
      match intern tag with
      | None -> Error (Printf.sprintf "unknown tag %S" tag)
      | Some label ->
        skip_ws ();
        let* value =
          match peek () with
          | Some '=' ->
            incr pos;
            skip_ws ();
            (match peek () with
            | Some '"' -> Result.map Option.some (scan_quoted ())
            | Some c when is_tag_char c ->
              let v = scan_token () in
              if v = "" then error "expected a value after '='" else Ok (Some v)
            | _ -> error "expected a value after '='")
          | _ -> Ok None
        in
        skip_ws ();
        (match peek () with
        | Some '(' ->
          incr pos;
          let* kids = scan_kids [] in
          skip_ws ();
          (match peek () with
          | Some ')' ->
            incr pos;
            Ok { label; value; children = List.rev kids }
          | _ -> error "expected ')'")
        | _ -> Ok { label; value; children = [] })
    end
  and scan_kids acc =
    let* child = scan_node () in
    skip_ws ();
    match peek () with
    | Some ',' ->
      incr pos;
      scan_kids (child :: acc)
    | _ -> Ok (child :: acc)
  in
  let* result = scan_node () in
  skip_ws ();
  if !pos <> n then error "trailing input" else Ok (canonicalize result)
