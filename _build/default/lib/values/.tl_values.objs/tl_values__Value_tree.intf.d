lib/values/value_tree.mli: Tl_tree Tl_xml
