lib/values/value_summary.ml: Array Hashtbl List Option String Tl_tree Tl_util Value_tree
