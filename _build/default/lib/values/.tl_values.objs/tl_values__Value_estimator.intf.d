lib/values/value_estimator.mli: Tl_core Tl_lattice Value_query Value_summary Value_tree
