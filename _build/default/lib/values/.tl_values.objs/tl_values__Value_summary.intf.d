lib/values/value_summary.mli: Value_tree
