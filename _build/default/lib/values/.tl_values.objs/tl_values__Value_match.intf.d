lib/values/value_match.mli: Tl_tree Value_query Value_tree
