lib/values/value_query.ml: Buffer Char List Option Printf Result String Tl_twig
