lib/values/value_query.mli: Tl_twig
