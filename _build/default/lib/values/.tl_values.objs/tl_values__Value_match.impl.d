lib/values/value_match.ml: Array Hashtbl List Option String Tl_tree Value_query Value_tree
