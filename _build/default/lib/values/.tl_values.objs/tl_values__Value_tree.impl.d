lib/values/value_tree.ml: Array List String Tl_tree Tl_xml
