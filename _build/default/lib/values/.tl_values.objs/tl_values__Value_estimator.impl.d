lib/values/value_estimator.ml: List Result Tl_core Tl_lattice Tl_tree Value_match Value_query Value_summary Value_tree
