(** Exact counting of value-twig matches.

    Extends {!Tl_twig.Match_count}'s semantics: a match additionally maps
    every value-constrained query node to a data node carrying exactly that
    value.  Same memoized top-down DP, with the value check folded into the
    per-node label test. *)

val selectivity : Value_tree.t -> Value_query.t -> int
(** Number of matches in the whole document. *)

val selectivity_rooted : Value_tree.t -> Value_query.t -> Tl_tree.Data_tree.node -> int
