(** Twig queries with value predicates.

    A value twig is a twig whose nodes optionally constrain the matched
    node's value: [person(name="smith",address(city="oslo"))].  Matching
    extends Definition 1 with "the image of a value-constrained query node
    carries exactly that value".

    Like plain twigs, value twigs are unordered; the canonical form sorts
    children by an encoding that includes the value constraint, so
    structurally equal queries compare equal. *)

type t = { label : int; value : string option; children : t list }

val leaf : ?value:string -> int -> t

val node : ?value:string -> int -> t list -> t

val size : t -> int

val canonicalize : t -> t

val equal : t -> t -> bool

val encode : t -> string
(** Canonical key; value constraints render as [=hex] suffixes so arbitrary
    value bytes cannot collide with the structural syntax. *)

val strip : t -> Tl_twig.Twig.t
(** Drop the value constraints — the structural twig the lattice prices. *)

val predicates : t -> (int * string) list
(** Value constraints as (label, value) pairs, in canonical preorder. *)

val of_twig : Tl_twig.Twig.t -> t
(** A value twig with no constraints. *)

val pp : names:(int -> string) -> t -> string
(** Syntax: [person(name="smith",city)]. *)

(** {2 Textual syntax}

    The twig syntax extended with [=value] after a tag: bare values use tag
    characters only; anything else must be double-quoted, with backslash
    escapes for quote and backslash. *)

val parse : intern:(string -> int option) -> string -> (t, string) result
