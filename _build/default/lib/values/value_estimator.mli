(** Selectivity estimation for twig queries with value predicates.

    The estimate factorizes, mirroring how the paper factorizes structure:

    {v sigma(twig with preds) ~ sigma_structural(twig)
                                * prod over preds P(value | label) v}

    under the assumption that values are independent of the surrounding
    structure and of each other given their labels — the value-side
    analogue of tree-growing independence.  Structural estimation is any
    {!Tl_core.Estimator.scheme} over the ordinary lattice summary; the
    per-predicate factors come from {!Value_summary}.

    Exact on documents where the independence holds (tested); the known
    failure mode — correlated values — is the value analogue of IMDB's
    correlated structure. *)

type t

val create :
  ?k:int -> ?top:int -> Value_tree.t -> t
(** Build both summaries over the document ([k] lattice depth, default 4;
    [top] histogram width, default 32). *)

val of_parts : Value_tree.t -> Tl_lattice.Summary.t -> Value_summary.t -> t

val vtree : t -> Value_tree.t

val structural : t -> Tl_lattice.Summary.t

val values : t -> Value_summary.t

val estimate : ?scheme:Tl_core.Estimator.scheme -> t -> Value_query.t -> float

val exact : t -> Value_query.t -> int
(** Exact count by full matching (delegates to {!Value_match}). *)

val estimate_string : ?scheme:Tl_core.Estimator.scheme -> t -> string -> (float, string) result
(** Parse the value-twig syntax against the document's tags and estimate.
    Unknown tags yield [Ok 0.] *)

val exact_string : t -> string -> (int, string) result
