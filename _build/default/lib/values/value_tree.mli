(** Data trees with leaf values — the substrate for the paper's first
    future-work item ("extend the TreeLattice approach to work on the
    selectivity estimation for the twig queries with value predicates").

    The paper's data model observes that "in practice, values are almost
    always associated with leaf nodes" (§2.1); accordingly a node carries a
    value when its element has character data and no element children.
    Node ids coincide with the wrapped {!Tl_tree.Data_tree.t}'s ids, so all
    structural machinery keeps working unchanged. *)

type t

val of_element : Tl_xml.Xml_dom.element -> t

val of_xml : Tl_xml.Xml_dom.t -> t

val tree : t -> Tl_tree.Data_tree.t
(** The underlying structural tree. *)

val value : t -> Tl_tree.Data_tree.node -> string option
(** The node's value: its element's concatenated, whitespace-trimmed
    character data — [None] for interior elements and empty leaves. *)

val valued_nodes : t -> int
(** Number of nodes carrying a value. *)
