(** The path-tree summary (Aboulnaga et al., VLDB 2001) — the second
    classical path estimator from the paper's related work (§2.2: "a path
    tree is a summarized form of the XML data tree", which the Markov table
    was shown to beat on real data).

    A path tree merges every set of same-label siblings in the data tree
    into one node carrying their total count; the result has one node per
    distinct root-to-node label path.  Path selectivity is answered by
    walking the tree: exact for root-anchored paths, and estimated for
    unanchored paths by summing every occurrence of the path's label
    sequence across the tree.

    To fit a memory budget, low-count leaves are repeatedly pruned into
    their parent's star bucket (count-weighted average), the paper's
    "sibling-* " style aggregation. *)

type t

val build : Tl_tree.Data_tree.t -> t

val node_count : t -> int

val memory_bytes : t -> int
(** 16 bytes per path-tree node (label + count). *)

val estimate : t -> int list -> float
(** Selectivity of the label path (anywhere in the document, as
    {!Markov_table.estimate}).  Exact on unpruned path trees.  Raises
    [Invalid_argument] on the empty path. *)

val prune : t -> budget_bytes:int -> t
(** Merge lowest-count leaves into per-parent star buckets until the tree
    fits the budget.  The root is never pruned. *)
