module Data_tree = Tl_tree.Data_tree

type node = {
  label : int;
  mutable count : int;
  children : (int, node) Hashtbl.t;
  (* Aggregate of pruned children: how many distinct child paths were
     merged and their total count. *)
  mutable star : (int * int) option;
}

type t = { root : node }

let fresh label = { label; count = 0; children = Hashtbl.create 4; star = None }

let build tree =
  let root = fresh (Data_tree.label tree (Data_tree.root tree)) in
  root.count <- 1;
  let rec visit v pnode =
    Array.iter
      (fun w ->
        let l = Data_tree.label tree w in
        let child =
          match Hashtbl.find_opt pnode.children l with
          | Some c -> c
          | None ->
            let c = fresh l in
            Hashtbl.replace pnode.children l c;
            c
        in
        child.count <- child.count + 1;
        visit w child)
      (Data_tree.children tree v)
  in
  visit (Data_tree.root tree) root;
  { root }

let rec fold_nodes f acc node =
  let acc = f acc node in
  Hashtbl.fold (fun _ child acc -> fold_nodes f acc child) node.children acc

let node_count t = fold_nodes (fun acc _ -> acc + 1) 0 t.root

let memory_bytes t =
  fold_nodes (fun acc node -> acc + 16 + (match node.star with Some _ -> 16 | None -> 0)) 0 t.root

(* Count contribution of the label sequence starting at [node] (whose label
   already matched the sequence head). *)
let rec descend node = function
  | [] -> float_of_int node.count
  | l :: rest -> (
    match Hashtbl.find_opt node.children l with
    | Some child -> descend child rest
    | None -> (
      match node.star with
      | Some (merged, total) when merged > 0 && rest = [] ->
        (* A pruned child: its average count, usable only as a terminal
           step (the pruned subtree below it is gone). *)
        float_of_int total /. float_of_int merged
      | Some _ | None -> 0.0))

let estimate t labels =
  match labels with
  | [] -> invalid_arg "Path_tree.estimate: empty path"
  | first :: rest ->
    fold_nodes
      (fun acc node -> if node.label = first then acc +. descend node rest else acc)
      0.0 t.root

let rec copy node =
  let children = Hashtbl.create (Hashtbl.length node.children) in
  Hashtbl.iter (fun l child -> Hashtbl.replace children l (copy child)) node.children;
  { label = node.label; count = node.count; children; star = node.star }

let prune t ~budget_bytes =
  let pruned = { root = copy t.root } in
  let current = ref (memory_bytes pruned) in
  if !current <= budget_bytes then pruned
  else begin
    (* Repeatedly merge the lowest-count leaf into its parent's star. *)
    let rec leaves parent acc node =
      if Hashtbl.length node.children = 0 then (parent, node) :: acc
      else Hashtbl.fold (fun _ child acc -> leaves (Some node) acc child) node.children acc
    in
    let continue = ref true in
    while !current > budget_bytes && !continue do
      let candidates =
        List.filter_map
          (fun (parent, leaf) -> Option.map (fun p -> (p, leaf)) parent)
          (leaves None [] pruned.root)
      in
      match candidates with
      | [] -> continue := false
      | _ ->
        let parent, victim =
          List.fold_left
            (fun ((_, best) as best_pair) ((_, leaf) as pair) ->
              if leaf.count < best.count then pair else best_pair)
            (List.hd candidates) candidates
        in
        Hashtbl.remove parent.children victim.label;
        let merged, total = Option.value ~default:(0, 0) parent.star in
        parent.star <- Some (merged + 1, total + victim.count);
        current := memory_bytes pruned
    done;
    pruned
  end
