lib/paths/markov_table.ml: Hashtbl List Option String Tl_tree
