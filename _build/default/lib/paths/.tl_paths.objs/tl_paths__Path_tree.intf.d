lib/paths/path_tree.mli: Tl_tree
