lib/paths/markov_table.mli: Tl_tree
