lib/paths/path_tree.ml: Array Hashtbl List Option Tl_tree
