(** Twig evaluation plans.

    The paper's first motivation is query optimization: "determining an
    optimal query plan, based on said estimates, for complex queries."
    This module gives estimates something to optimize: a twig is evaluated
    as a sequence of structural joins, each extending the set of bound
    query nodes by one node adjacent to the already-bound region, and the
    cost of a plan is dominated by the sizes of the intermediate binding
    relations — which are exactly the selectivities of the induced
    sub-twigs, the quantity TreeLattice estimates.

    A plan is an ordering of the twig's canonical preorder indices where
    every prefix induces a connected sub-twig. *)

type t = { twig : Tl_twig.Twig.t; order : int array }

val validate : t -> (unit, string) result
(** Check the order is a permutation whose every prefix is connected. *)

val naive : Tl_twig.Twig.t -> t
(** The baseline plan: canonical preorder (root first, depth-first). *)

val greedy : Tl_lattice.Summary.t -> Tl_twig.Twig.t -> t
(** The estimator-guided plan: start from the node whose label is rarest,
    then repeatedly bind the adjacent node minimizing the {e estimated}
    selectivity of the next induced sub-twig. *)

val prefix_twigs : t -> Tl_twig.Twig.t list
(** The induced sub-twig after each step (sizes 1..n). *)

val estimated_cost : Tl_lattice.Summary.t -> t -> float
(** Sum of estimated intermediate sizes — the optimizer's objective. *)

val pp : names:(int -> string) -> t -> string
(** E.g. ["seller > open_auction > bidder > increase"]. *)
