module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator

type t = { twig : Twig.t; order : int array }

let adjacency (ix : Twig.indexed) =
  let n = Array.length ix.node_labels in
  let adj = Array.make n [] in
  for v = 1 to n - 1 do
    let p = ix.parents.(v) in
    adj.(v) <- p :: adj.(v);
    adj.(p) <- v :: adj.(p)
  done;
  adj

let validate t =
  let ix = Twig.index t.twig in
  let n = Array.length ix.Twig.node_labels in
  if Array.length t.order <> n then Error "order length differs from twig size"
  else begin
    let seen = Array.make n false in
    let adj = adjacency ix in
    let rec check i =
      if i >= n then Ok ()
      else begin
        let q = t.order.(i) in
        if q < 0 || q >= n then Error (Printf.sprintf "index %d out of bounds" q)
        else if seen.(q) then Error (Printf.sprintf "index %d bound twice" q)
        else if i > 0 && not (List.exists (fun nb -> seen.(nb)) adj.(q)) then
          Error (Printf.sprintf "step %d binds node %d not adjacent to the bound region" i q)
        else begin
          seen.(q) <- true;
          check (i + 1)
        end
      end
    in
    check 0
  end

let naive twig =
  let twig = Twig.canonicalize twig in
  { twig; order = Array.init (Twig.size twig) Fun.id }

let prefix_twigs t =
  let ix = Twig.index t.twig in
  let bound = ref [] in
  Array.to_list t.order
  |> List.map (fun q ->
         bound := q :: !bound;
         Twig.induced ix !bound)

let estimated_cost summary t =
  List.fold_left
    (fun acc prefix -> acc +. Estimator.estimate summary Estimator.Recursive prefix)
    0.0 (prefix_twigs t)

let greedy summary twig =
  let twig = Twig.canonicalize twig in
  let ix = Twig.index twig in
  let n = Array.length ix.Twig.node_labels in
  let adj = adjacency ix in
  let estimate nodes = Estimator.estimate summary Estimator.Recursive (Twig.induced ix nodes) in
  (* Seed: the rarest label anchors the smallest initial relation. *)
  let seed = ref 0 in
  for q = 1 to n - 1 do
    if estimate [ q ] < estimate [ !seed ] then seed := q
  done;
  let bound = ref [ !seed ] in
  let in_bound = Array.make n false in
  in_bound.(!seed) <- true;
  let order = Array.make n !seed in
  for step = 1 to n - 1 do
    let candidates =
      List.concat_map (fun q -> if in_bound.(q) then [] else [ q ]) (List.init n Fun.id)
      |> List.filter (fun q -> List.exists (fun nb -> in_bound.(nb)) adj.(q))
    in
    let best =
      List.fold_left
        (fun best q ->
          let cost = estimate (q :: !bound) in
          match best with
          | Some (_, best_cost) when best_cost <= cost -> best
          | _ -> Some (q, cost))
        None candidates
    in
    match best with
    | Some (q, _) ->
      order.(step) <- q;
      in_bound.(q) <- true;
      bound := q :: !bound
    | None -> assert false (* the twig is connected *)
  done;
  { twig; order }

let pp ~names t =
  let ix = Twig.index t.twig in
  Array.to_list t.order
  |> List.map (fun q -> names ix.Twig.node_labels.(q))
  |> String.concat " > "
