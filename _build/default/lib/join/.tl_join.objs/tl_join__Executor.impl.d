lib/join/executor.ml: Array List Plan Tl_tree Tl_twig Tl_util
