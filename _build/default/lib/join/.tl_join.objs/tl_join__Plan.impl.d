lib/join/plan.ml: Array Fun List Printf String Tl_core Tl_lattice Tl_twig
