lib/join/plan.mli: Tl_lattice Tl_twig
