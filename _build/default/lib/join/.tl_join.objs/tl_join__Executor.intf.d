lib/join/executor.mli: Plan Tl_tree
