module Data_tree = Tl_tree.Data_tree
module Twig = Tl_twig.Twig

type stats = {
  result_count : int;
  tuples_materialized : int;
  peak_relation : int;
  truncated : bool;
}

exception Capped

(* Candidate images for query node [q] given a partial tuple: intersect the
   downward constraint (children of the bound parent image) with the upward
   constraint (common parent of the bound child images), then enforce
   injectivity against bound query siblings. *)
let candidates tree (ix : Twig.indexed) q tuple =
  let label = ix.Twig.node_labels.(q) in
  let p = ix.Twig.parents.(q) in
  let from_parent =
    if p >= 0 && tuple.(p) >= 0 then Some (Array.to_list (Data_tree.children_with_label tree tuple.(p) label))
    else None
  in
  let bound_children = List.filter (fun c -> tuple.(c) >= 0) ix.Twig.kids.(q) in
  let from_children =
    match bound_children with
    | [] -> None
    | c :: rest -> (
      match Data_tree.parent tree tuple.(c) with
      | Some w
        when Data_tree.label tree w = label
             && List.for_all (fun c' -> Data_tree.parent tree tuple.(c') = Some w) rest ->
        Some [ w ]
      | Some _ | None -> Some [])
  in
  let merged =
    match (from_parent, from_children) with
    | Some a, Some b -> List.filter (fun w -> List.mem w b) a
    | Some a, None -> a
    | None, Some b -> b
    | None, None -> invalid_arg "Executor: step not adjacent to the bound region"
  in
  match p with
  | -1 -> merged
  | p ->
    List.filter
      (fun w -> List.for_all (fun r -> r = q || tuple.(r) <> w) ix.Twig.kids.(p))
      merged

let run_relation ~cap tree (plan : Plan.t) =
  if cap <= 0 then invalid_arg "Executor.run: cap must be positive";
  (match Plan.validate plan with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Executor.run: invalid plan: " ^ msg));
  let ix = Twig.index plan.Plan.twig in
  let n = Array.length ix.Twig.node_labels in
  let seed = plan.Plan.order.(0) in
  let initial =
    Array.to_list (Data_tree.nodes_with_label tree ix.Twig.node_labels.(seed))
    |> List.map (fun v ->
           let tuple = Array.make n (-1) in
           tuple.(seed) <- v;
           tuple)
  in
  let materialized = ref (List.length initial) in
  let peak = ref (List.length initial) in
  let relation = ref initial in
  try
    for step = 1 to n - 1 do
      let q = plan.Plan.order.(step) in
      let size = ref 0 in
      let extended =
        List.concat_map
          (fun tuple ->
            List.map
              (fun w ->
                incr size;
                if !materialized + !size > cap then raise Capped;
                let next = Array.copy tuple in
                next.(q) <- w;
                next)
              (candidates tree ix q tuple))
          !relation
      in
      relation := extended;
      materialized := !materialized + !size;
      if !size > !peak then peak := !size
    done;
    (!relation, !materialized, !peak, false)
  with Capped -> ([], cap, !peak, true)

let default_cap = 2_000_000

let run ?(cap = default_cap) tree plan =
  let relation, materialized, peak, truncated = run_relation ~cap tree plan in
  {
    result_count = List.length relation;
    tuples_materialized = materialized;
    peak_relation = peak;
    truncated;
  }

let run_matches ?(cap = default_cap) ?limit tree plan =
  let relation, _, _, _ = run_relation ~cap tree plan in
  match limit with None -> relation | Some l -> Tl_util.Prelude.list_take l relation
