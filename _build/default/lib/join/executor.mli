(** Plan execution: structural joins over the data tree.

    A plan runs as a pipeline of binding extensions.  The state after step
    [i] is the relation of all partial matches of the plan's [i+1]-node
    induced sub-twig; each step joins the relation with one twig edge —
    downward (bind children of a bound node's image) or upward (bind the
    parent of a bound node's image, intersecting when several bound
    children constrain it).  Sibling injectivity is enforced as tuples
    extend, so the final relation is exactly the match set of
    Definition 1.

    The executor reports the total number of intermediate tuples
    materialized — the cost the optimizer's estimates try to minimize —
    so estimator-guided plans can be compared against naive ones on real
    executions. *)

type stats = {
  result_count : int;  (** matches of the full twig (0 when truncated) *)
  tuples_materialized : int;  (** sum of intermediate relation sizes *)
  peak_relation : int;  (** largest intermediate relation *)
  truncated : bool;  (** execution aborted at the tuple cap *)
}

val run : ?cap:int -> Tl_tree.Data_tree.t -> Plan.t -> stats
(** Execute the plan.  [cap] (default [2_000_000]) bounds the total tuples
    materialized: a bad join order can blow intermediate relations up
    combinatorially (that blow-up is precisely what the optimizer avoids),
    so execution aborts with [truncated = true] once the cap is crossed
    rather than exhausting memory.  Raises [Invalid_argument] when the plan
    does not {!Plan.validate} or [cap <= 0]. *)

val run_matches :
  ?cap:int -> ?limit:int -> Tl_tree.Data_tree.t -> Plan.t -> Tl_tree.Data_tree.node array list
(** Execute and return the final binding tuples (indexed by the twig's
    canonical preorder), at most [limit] (default all).  Returns [] when
    execution hits [cap]. *)
