(* Benchmark harness.

   Phase 1 regenerates every table and figure of the paper's evaluation
   through Tl_harness.Experiments (macro measurements: construction times,
   estimation errors, response times, pruning sweeps).

   Phase 2 runs bechamel micro-benchmarks — one Test.make per timed paper
   artifact — so per-operation costs (summary construction per dataset for
   Table 3, per-scheme estimation for Fig. 9, exact counting, mining) are
   measured with proper linear-regression timing rather than single-shot
   stopwatches.

   Usage: main.exe [--quick] [--skip-micro] [--target N] *)

open Bechamel
module Experiments = Tl_harness.Experiments
module Dataset = Tl_datasets.Dataset
module Data_tree = Tl_tree.Data_tree
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator
module Twig = Tl_twig.Twig

let has_flag name = Array.exists (String.equal name) Sys.argv

let arg_value name =
  let result = ref None in
  Array.iteri
    (fun i a -> if String.equal a name && i + 1 < Array.length Sys.argv then result := Some Sys.argv.(i + 1))
    Sys.argv;
  !result

(* --- phase 2: micro-benchmarks ------------------------------------------ *)

(* A small fixed environment so micro-benchmarks are quick and stable. *)
let micro_target = 6_000

let micro_tests () =
  let datasets = [ Dataset.nasa; Dataset.xmark ] in
  let prepared =
    List.map
      (fun d ->
        let tree = Dataset.tree d ~target:micro_target ~seed:11 in
        let ctx = Tl_twig.Match_count.create_ctx tree in
        let summary = Summary.build ~k:4 tree in
        let sketch = Tl_sketch.Sketch_build.build ~budget_bytes:(8 * 1024) tree in
        let wl =
          match Tl_workload.Workload.positive ~seed:13 ctx ~size:7 ~count:1 with
          | { queries = [||]; _ } -> None
          | { queries; _ } -> Some queries.(0).Tl_workload.Workload.twig
        in
        (d.Dataset.name, tree, ctx, summary, sketch, wl))
      datasets
  in
  let construction =
    List.concat_map
      (fun (name, tree, _, _, _, _) ->
        [
          Test.make
            ~name:(Printf.sprintf "table3/lattice-build/%s" name)
            (Staged.stage (fun () -> ignore (Summary.build ~k:4 tree)));
          Test.make
            ~name:(Printf.sprintf "table3/sketch-build/%s" name)
            (Staged.stage (fun () -> ignore (Tl_sketch.Sketch_build.build ~budget_bytes:(8 * 1024) tree)));
        ])
      prepared
  in
  let estimation =
    List.concat_map
      (fun (name, _, ctx, summary, sketch, wl) ->
        match wl with
        | None -> []
        | Some twig ->
          [
            Test.make
              ~name:(Printf.sprintf "fig9/recursive/%s" name)
              (Staged.stage (fun () -> ignore (Estimator.estimate summary Recursive twig)));
            Test.make
              ~name:(Printf.sprintf "fig9/voting/%s" name)
              (Staged.stage (fun () -> ignore (Estimator.estimate summary Recursive_voting twig)));
            Test.make
              ~name:(Printf.sprintf "fig9/fixed-size/%s" name)
              (Staged.stage (fun () -> ignore (Estimator.estimate summary Fixed_size twig)));
            Test.make
              ~name:(Printf.sprintf "fig9/treesketches/%s" name)
              (Staged.stage (fun () -> ignore (Tl_sketch.Sketch_estimate.estimate sketch twig)));
            Test.make
              ~name:(Printf.sprintf "exact-count/%s" name)
              (Staged.stage (fun () -> ignore (Tl_twig.Match_count.selectivity ctx twig)));
          ])
      prepared
  in
  let mining =
    List.map
      (fun (name, _, ctx, _, _, _) ->
        Test.make
          ~name:(Printf.sprintf "table2/mine-3-lattice/%s" name)
          (Staged.stage (fun () -> ignore (Tl_mining.Miner.mine ctx ~max_size:3))))
      prepared
  in
  (* Subsystems beyond the paper's tables: ingestion routes, the Markov
     path baseline, planning, and match enumeration. *)
  let extras =
    match prepared with
    | [] -> []
    | (name, tree, _, summary, _, wl) :: _ ->
      let xml =
        Tl_xml.Xml_writer.to_string
          { decl = None; root = (Dataset.xmark.Dataset.document ~target:micro_target ~seed:11) }
      in
      let markov = Tl_paths.Markov_table.build ~order:3 tree in
      let ingestion =
        [
          Test.make ~name:"ingest/dom-route"
            (Staged.stage (fun () ->
                 ignore (Data_tree.of_xml (Tl_xml.Xml_dom.parse_string xml))));
          Test.make ~name:"ingest/sax-route"
            (Staged.stage (fun () -> ignore (Tl_tree.Tree_load.of_string xml)));
        ]
      in
      let per_query =
        match wl with
        | None -> []
        | Some twig ->
          [
            Test.make
              ~name:(Printf.sprintf "plan/greedy/%s" name)
              (Staged.stage (fun () -> ignore (Tl_join.Plan.greedy summary twig)));
            Test.make
              ~name:(Printf.sprintf "execute/guided/%s" name)
              (Staged.stage
                 (let plan = Tl_join.Plan.greedy summary twig in
                  fun () -> ignore (Tl_join.Executor.run tree plan)));
            Test.make
              ~name:(Printf.sprintf "enumerate/limit64/%s" name)
              (Staged.stage (fun () -> ignore (Tl_twig.Match_enum.enumerate ~limit:64 tree twig)));
            Test.make
              ~name:(Printf.sprintf "markov-table/path/%s" name)
              (Staged.stage
                 (let path =
                    match Twig.path_labels (Twig.of_path (Twig.labels twig)) with
                    | Some p -> p
                    | None -> Twig.labels twig
                  in
                  fun () -> ignore (Tl_paths.Markov_table.estimate markov path)));
          ]
      in
      ingestion @ per_query
  in
  construction @ estimation @ mining @ extras

let run_micro () =
  let tests = Test.make_grouped ~name:"treelattice" (micro_tests ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  print_string (Tl_harness.Report.section "micro" "bechamel micro-benchmarks (per call)");
  let render (name, ols) =
    let nanos =
      match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> Float.nan
    in
    let pretty =
      if Float.is_nan nanos then "n/a"
      else if nanos > 1e9 then Printf.sprintf "%8.2f s " (nanos /. 1e9)
      else if nanos > 1e6 then Printf.sprintf "%8.2f ms" (nanos /. 1e6)
      else if nanos > 1e3 then Printf.sprintf "%8.2f us" (nanos /. 1e3)
      else Printf.sprintf "%8.2f ns" nanos
    in
    let r2 = match Analyze.OLS.r_square ols with Some r -> Printf.sprintf "%.4f" r | None -> "-" in
    Printf.printf "  %-44s %s  (r²=%s)\n" name pretty r2
  in
  List.iter render rows

(* --- main ----------------------------------------------------------------- *)

let () =
  let quick = has_flag "--quick" in
  let config = if quick then Experiments.quick_config else Experiments.default_config in
  let config =
    match arg_value "--target" with
    | Some t -> { config with Experiments.target = int_of_string t }
    | None -> config
  in
  Printf.printf
    "TreeLattice reproduction bench (target=%d elements/dataset, k=%d, %d queries/size)\n%!"
    config.Experiments.target config.Experiments.k config.Experiments.queries_per_size;
  let suite, ms = Tl_util.Timer.time_ms (fun () -> Experiments.make_suite config) in
  Printf.printf "prepared 4 datasets in %.1f s\n%!" (ms /. 1000.0);
  List.iter
    (fun (id, _, driver) ->
      let report, ms = Tl_util.Timer.time_ms (fun () -> driver suite) in
      print_string report;
      Printf.printf "  [%s completed in %.1f s]\n%!" id (ms /. 1000.0))
    Experiments.all_experiments;
  if not (has_flag "--skip-micro") then run_micro ()
